package tinydir

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tinydir/internal/energy"
)

// Figure is the data behind one of the paper's figures: one value per
// (series, column). Columns are usually the 17 applications plus an
// Average; Fig. 21 uses configuration names instead.
type Figure struct {
	ID    string
	Title string
	Cols  []string
	// Series preserves insertion order.
	Series []Series
	// Unit annotates the values ("x", "%", "pp", ...).
	Unit string
	// NoAverage suppresses the Average column (distributions).
	NoAverage bool
}

// Series is one line/bar group of a figure.
type Series struct {
	Name   string
	Values map[string]float64
}

// Avg returns the arithmetic mean over the figure's columns.
func (s Series) Avg(cols []string) float64 {
	if len(cols) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cols {
		sum += s.Values[c]
	}
	return sum / float64(len(cols))
}

// Fprint renders the figure as an aligned text table.
func (f Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s (unit: %s) ==\n", f.ID, f.Title, f.Unit)
	cols := append([]string{}, f.Cols...)
	if !f.NoAverage {
		cols = append(cols, "Average")
	}
	nameW := len("series")
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	fmt.Fprintf(w, "%-*s", nameW+2, "series")
	for _, c := range cols {
		fmt.Fprintf(w, "%12s", trunc(c, 11))
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-*s", nameW+2, s.Name)
		for _, c := range cols {
			v := s.Values[c]
			if c == "Average" && !f.NoAverage {
				v = s.Avg(f.Cols)
			}
			fmt.Fprintf(w, "%12.3f", v)
		}
		fmt.Fprintln(w)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Suite memoizes simulation runs so figures sharing configurations (e.g.
// every figure needs the 2x baseline) reuse them.
//
// Simulations are mutually independent (each Run owns its engine, trace
// generator and metric sinks), so a Suite executes the runs a figure
// needs on a bounded worker pool of Workers goroutines. Every figure is
// built in two passes: a dry pass that only records which (app, scheme)
// runs the figure touches, a parallel prefetch of the missing ones, and
// a real pass served entirely from the cache. The real pass is the same
// serial code as Workers == 1, so figure output is bit-identical at any
// worker count.
type Suite struct {
	Scale    Scale
	Progress io.Writer
	// Workers bounds concurrent simulations during prefetch; <= 1 runs
	// strictly serially. NewSuite defaults it to runtime.NumCPU().
	Workers int
	// Store, when set, persists every run's result and warmup checkpoint
	// on disk (see RunStore); with Resume also set, results already in
	// the store are served without simulating, making an interrupted
	// sweep resumable.
	Store  *RunStore
	Resume bool
	// Obs, when enabled, attaches a fresh observability recorder to every
	// simulated run; with ObsDir also set, each instrumented run's
	// artifacts (epoch CSV, latency histogram text, Chrome trace JSON) are
	// written there. Store-served results produce no artifacts — nothing
	// was simulated. Recording never changes results (see Options.Obs),
	// but instrumented runs bypass warmup checkpoints, so sweeps are
	// slower with Obs on.
	Obs    ObsConfig
	ObsDir string
	// RunTimeout bounds each simulation's wall clock (0 = none). A run
	// that blows it is quarantined like a panicking one — the sweep
	// completes, Failures() reports it — instead of hanging the worker
	// pool forever.
	RunTimeout time.Duration
	// Dispatch, when set, replaces local simulation: every run the suite
	// would execute goes through it instead of the in-process
	// runWithStore path. The distributed sweep service plugs in here —
	// AttachSweepService installs a Dispatch that enqueues the run as a
	// work unit and blocks until a fleet worker returns its Result. An
	// error from Dispatch is recorded like a quarantined run. The
	// figure-assembly passes are untouched, so output stays byte-
	// identical to a local sweep.
	Dispatch DispatchFunc

	sh *suiteShared
}

// DispatchFunc executes (or delegates) one planned run. simulated
// reports whether real simulation work happened (false when the result
// was served from a store).
type DispatchFunc func(o Options) (r Result, simulated bool, err error)

// suiteShared is the run cache and prefetch plan, shared with the derived
// sub-suite FigHalved builds so all runs land in one cache.
type suiteShared struct {
	mu        sync.Mutex
	cache     map[string]Result
	runs      int // simulations actually executed (store-served results excluded)
	planning  bool
	planned   map[string]bool
	plan      []plannedRun
	failures  []RunFailure
	rep       *Reporter   // lazily built; all progress output funnels through it
	cancelled atomic.Bool // Cancel() was called: claim no new runs
}

// RunFailure records one run that panicked or blew its deadline inside a
// sweep: the sweep went on without it, its slot holds a zero Result, and
// Artifact (when ObsDir was set) names the quarantine post-mortem.
type RunFailure struct {
	App, Scheme string
	Err         string
	Artifact    string
}

// plannedRun is one simulation a dry figure pass requested.
type plannedRun struct {
	key  string
	opts Options
}

// NewSuite creates a figure suite at the given scale.
func NewSuite(scale Scale) *Suite {
	return &Suite{
		Scale:   scale,
		Workers: runtime.NumCPU(),
		sh:      &suiteShared{cache: map[string]Result{}},
	}
}

// derived returns a sub-suite at another scale sharing this suite's cache,
// prefetch plan and worker budget.
func (s *Suite) derived(scale Scale) *Suite {
	return &Suite{Scale: scale, Progress: s.Progress, Workers: s.Workers,
		Store: s.Store, Resume: s.Resume, Obs: s.Obs, ObsDir: s.ObsDir,
		RunTimeout: s.RunTimeout, Dispatch: s.Dispatch, sh: s.sh}
}

// Cancel stops the sweep at the next run boundary: prefetch workers
// claim no further plan entries and serial builders skip remaining
// simulations, while in-flight runs complete normally — their results
// still flush to the store through the usual atomic write, so an
// interrupted sweep resumes exactly where it stopped. Figures built
// after Cancel contain zero-valued slots; callers must check
// Cancelled() and discard them.
func (s *Suite) Cancel() { s.sh.cancelled.Store(true) }

// Cancelled reports whether Cancel was called.
func (s *Suite) Cancelled() bool { return s.sh.cancelled.Load() }

// Monitor returns the suite's progress reporter, building it on first
// use. The reporter serializes progress lines across workers and tracks
// the counters behind its Snapshot — the live sweep monitor's data
// source. Derived sub-suites share it.
func (s *Suite) Monitor() *Reporter {
	sh := s.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.rep == nil {
		sh.rep = NewReporter(s.Progress)
	}
	return sh.rep
}

func (s *Suite) runKey(app Profile, scheme Scheme) string {
	key := app.Name + "|" + scheme.String() + "|" + s.Scale.Name
	if s.Scale.HalveHierarchy {
		key += "|halved"
	}
	return key
}

func (s *Suite) run(app Profile, scheme Scheme) Result {
	key := s.runKey(app, scheme)
	sh := s.sh
	sh.mu.Lock()
	if r, ok := sh.cache[key]; ok {
		sh.mu.Unlock()
		return r
	}
	if sh.planning {
		// Dry pass: record the run and hand back a zero result; only the
		// set of runs matters, the figure built from it is discarded.
		if !sh.planned[key] {
			sh.planned[key] = true
			sh.plan = append(sh.plan, plannedRun{key: key, opts: Options{App: app, Scheme: scheme, Scale: s.Scale}})
		}
		sh.mu.Unlock()
		return Result{App: app.Name, Scheme: scheme.String()}
	}
	sh.mu.Unlock()
	r, simulated := s.executeRun(Options{App: app, Scheme: scheme, Scale: s.Scale})
	sh.mu.Lock()
	sh.cache[key] = r
	if simulated {
		sh.runs++
	}
	sh.mu.Unlock()
	return r
}

// figure builds one figure, prefetching the runs it needs in parallel.
func (s *Suite) figure(build func() Figure) Figure {
	sh := s.sh
	sh.mu.Lock()
	if sh.planning {
		// A figure built while another one plans: the outer plan simply
		// covers both.
		sh.mu.Unlock()
		return build()
	}
	sh.planning = true
	sh.planned = map[string]bool{}
	sh.mu.Unlock()
	build() // dry pass: records every run the figure needs
	sh.mu.Lock()
	plan := sh.plan
	sh.plan, sh.planned, sh.planning = nil, nil, false
	sh.mu.Unlock()
	// The dry pass runs even in serial mode: the Reporter's planned count
	// (progress denominators, ETAs, the interrupt summary) must cover the
	// figure regardless of how many workers execute it.
	if len(plan) > 0 {
		s.Monitor().addPlanned(len(plan))
	}
	if s.Workers > 1 {
		s.prefetch(plan)
	}
	return build() // real pass: cached when prefetched, identical either way
}

// prefetch executes the planned runs on a bounded worker pool.
func (s *Suite) prefetch(plan []plannedRun) {
	workers := s.Workers
	if workers > len(plan) {
		workers = len(plan)
	}
	if workers < 1 {
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s.sh.cancelled.Load() {
					return // graceful shutdown: claim nothing further
				}
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(plan) {
					return
				}
				p := plan[i]
				r, simulated := s.executeRun(p.opts)
				s.sh.mu.Lock()
				s.sh.cache[p.key] = r
				if simulated {
					s.sh.runs++
				}
				s.sh.mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// Runs returns the number of simulations actually executed so far.
// Results served from a Store under Resume are not counted — they cost no
// simulation.
func (s *Suite) Runs() int {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	return s.sh.runs
}

// Failures returns the runs quarantined so far, in the order they failed.
// A sweep with failures still produces every figure (failed slots read as
// zero), so the caller must check this and exit nonzero.
func (s *Suite) Failures() []RunFailure {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	return append([]RunFailure(nil), s.sh.failures...)
}

// ReportFailures prints a per-run failure summary through the suite's
// reporter and returns the failure count (0 = clean sweep). Commands call
// it last and turn a nonzero count into a nonzero exit. A suite running
// quiet (no Progress writer) still reports failures — to stderr; quiet
// suppresses progress, never errors.
func (s *Suite) ReportFailures() int {
	fails := s.Failures()
	if len(fails) == 0 {
		return 0
	}
	printf := s.Monitor().printf
	if s.Progress == nil {
		printf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	printf("%d run(s) FAILED and were quarantined:\n", len(fails))
	for _, f := range fails {
		printf("  %s %s: %s\n", f.App, f.Scheme, f.Err)
		if f.Artifact != "" {
			printf("    artifact: %s\n", f.Artifact)
		}
	}
	return len(fails)
}

// The public figure methods wrap the serial builders below in the
// plan/prefetch/build cycle of figure(): the simulations each figure
// needs run concurrently, the figure itself is assembled serially.

// Fig1 reproduces Figure 1 (see fig1).
func (s *Suite) Fig1() Figure { return s.figure(s.fig1) }

// Fig2 reproduces Figure 2 (see fig2).
func (s *Suite) Fig2() Figure { return s.figure(s.fig2) }

// Fig3 reproduces Figure 3 (see fig3).
func (s *Suite) Fig3() Figure { return s.figure(s.fig3) }

// Fig4 reproduces Figure 4 (see fig4).
func (s *Suite) Fig4() Figure { return s.figure(s.fig4) }

// Fig5 reproduces Figure 5 (see fig5).
func (s *Suite) Fig5() Figure { return s.figure(s.fig5) }

// Fig6 reproduces Figure 6 (see fig6).
func (s *Suite) Fig6() Figure { return s.figure(s.fig6) }

// Fig7 reproduces Figure 7 (see fig7).
func (s *Suite) Fig7() Figure { return s.figure(s.fig7) }

// Fig8 reproduces Figure 8 (see fig8).
func (s *Suite) Fig8() Figure { return s.figure(s.fig8) }

// Fig9 reproduces Figure 9 (see fig9).
func (s *Suite) Fig9() Figure { return s.figure(s.fig9) }

// FigTiny reproduces Figures 10-13 (see figTiny).
func (s *Suite) FigTiny(ratio float64) Figure {
	return s.figure(func() Figure { return s.figTiny(ratio) })
}

// FigLengthened reproduces Figures 14/15 (see figLengthened).
func (s *Suite) FigLengthened(ratio float64) Figure {
	return s.figure(func() Figure { return s.figLengthened(ratio) })
}

// Fig16 reproduces Figure 16 (see fig16).
func (s *Suite) Fig16() Figure { return s.figure(s.fig16) }

// Fig17 reproduces Figure 17 (see fig17).
func (s *Suite) Fig17() Figure { return s.figure(s.fig17) }

// Fig18 reproduces Figure 18 (see fig18).
func (s *Suite) Fig18() Figure { return s.figure(s.fig18) }

// Fig19 reproduces Figure 19 (see fig19).
func (s *Suite) Fig19() Figure { return s.figure(s.fig19) }

// Fig20 reproduces Figure 20 (see fig20).
func (s *Suite) Fig20() Figure { return s.figure(s.fig20) }

// Fig21 reproduces Figure 21 (see fig21).
func (s *Suite) Fig21() Figure { return s.figure(s.fig21) }

// Fig22 reproduces Figure 22 (see fig22).
func (s *Suite) Fig22() Figure { return s.figure(s.fig22) }

// FigHalved reproduces the §V-A robustness experiment (see figHalved).
func (s *Suite) FigHalved() Figure { return s.figure(s.figHalved) }

// AblFormat runs the sharer-encoding ablation (see ablFormat).
func (s *Suite) AblFormat() Figure { return s.figure(s.ablFormat) }

// AblGenLen runs the gNRU generation-length ablation (see ablGenLen).
func (s *Suite) AblGenLen() Figure { return s.figure(s.ablGenLen) }

// AblWindow runs the spill-window ablation (see ablWindow).
func (s *Suite) AblWindow() Figure { return s.figure(s.ablWindow) }

func (s *Suite) appNames() []string {
	var names []string
	for _, p := range Apps() {
		names = append(names, p.Name)
	}
	return names
}

// baseline returns the 2x sparse directory run for an app.
func (s *Suite) baseline(app Profile) Result { return s.run(app, SparseDirectory(2.0)) }

// normCycles returns execution time normalized to the 2x baseline.
func (s *Suite) normCycles(app Profile, scheme Scheme) float64 {
	base := s.baseline(app).Metrics.Cycles
	r := s.run(app, scheme)
	return float64(r.Metrics.Cycles) / float64(base)
}

// perApp fills a series by evaluating fn for every application.
func (s *Suite) perApp(name string, fn func(app Profile) float64) Series {
	se := Series{Name: name, Values: map[string]float64{}}
	for _, app := range Apps() {
		se.Values[app.Name] = fn(app)
	}
	return se
}

// Fig1 reproduces Figure 1: baseline sparse directories of 1/4x, 1/8x,
// 1/16x, normalized execution time vs 2x.
func (s *Suite) fig1() Figure {
	f := Figure{ID: "Fig1", Title: "Sparse directory sizing", Cols: s.appNames(), Unit: "x vs 2x"}
	for _, ratio := range []float64{1.0 / 4, 1.0 / 8, 1.0 / 16} {
		ratio := ratio
		f.Series = append(f.Series, s.perApp(ratioName(ratio), func(app Profile) float64 {
			return s.normCycles(app, SparseDirectory(ratio))
		}))
	}
	return f
}

// Fig2 reproduces Figure 2: distribution of the maximum sharer count per
// allocated LLC block (percent of allocated blocks per bin), measured on
// the 2x baseline.
func (s *Suite) fig2() Figure {
	f := Figure{ID: "Fig2", Title: "Max sharer count per allocated LLC block", Cols: s.appNames(), Unit: "%"}
	bins := []string{"[2,4]", "[5,8]", "[9,16]", "[17,128]"}
	for i, bin := range bins {
		i := i
		f.Series = append(f.Series, s.perApp(bin, func(app Profile) float64 {
			m := s.baseline(app).Metrics
			if m.AllocatedBlocks == 0 {
				return 0
			}
			return 100 * float64(m.SharerBins[i]) / float64(m.AllocatedBlocks)
		}))
	}
	return f
}

// Fig3 reproduces Figure 3: sparse directories tracking only shared
// blocks (1/16x..1/128x), plus the skew-associative variants the text
// reports, normalized to 2x.
func (s *Suite) fig3() Figure {
	f := Figure{ID: "Fig3", Title: "Shared-only directory limit study", Cols: s.appNames(), Unit: "x vs 2x"}
	for _, ratio := range []float64{1.0 / 16, 1.0 / 32, 1.0 / 64, 1.0 / 128} {
		ratio := ratio
		f.Series = append(f.Series, s.perApp(ratioName(ratio), func(app Profile) float64 {
			return s.normCycles(app, SharedOnlyDirectory(ratio, false))
		}))
	}
	for _, ratio := range []float64{1.0 / 16, 1.0 / 32, 1.0 / 64} {
		ratio := ratio
		f.Series = append(f.Series, s.perApp("skew-"+ratioName(ratio), func(app Profile) float64 {
			return s.normCycles(app, SharedOnlyDirectory(ratio, true))
		}))
	}
	return f
}

// Fig4 reproduces Figure 4: in-LLC coherence tracking, tag-extended vs
// data-bits-borrowed, normalized to 2x.
func (s *Suite) fig4() Figure {
	f := Figure{ID: "Fig4", Title: "In-LLC coherence tracking", Cols: s.appNames(), Unit: "x vs 2x"}
	f.Series = append(f.Series, s.perApp("tag-extended", func(app Profile) float64 {
		return s.normCycles(app, InLLC(true))
	}))
	f.Series = append(f.Series, s.perApp("data-bits-borrowed", func(app Profile) float64 {
		return s.normCycles(app, InLLC(false))
	}))
	return f
}

// Fig5 reproduces Figure 5: interconnect traffic split into processor,
// writeback and coherence classes, normalized to the 2x baseline's total.
func (s *Suite) fig5() Figure {
	f := Figure{ID: "Fig5", Title: "Interconnect traffic breakdown", Cols: s.appNames(), Unit: "x of 2x total"}
	classes := []string{"processor", "writeback", "coherence"}
	order := []int{0, 1, 2}
	for _, cfgName := range []string{"sparse-2x", "inllc"} {
		cfgName := cfgName
		for _, ci := range order {
			ci := ci
			f.Series = append(f.Series, s.perApp(cfgName+":"+classes[ci], func(app Profile) float64 {
				base := s.baseline(app).Metrics
				var m Metrics
				if cfgName == "sparse-2x" {
					m = base
				} else {
					m = s.run(app, InLLC(false)).Metrics
				}
				tot := float64(base.TotalTraffic())
				if tot == 0 {
					return 0
				}
				return float64(m.TrafficBytes[ci]) / tot
			}))
		}
	}
	return f
}

// Fig6 reproduces Figure 6: percentage of LLC accesses whose critical
// path lengthens under in-LLC tracking, split into code and data.
func (s *Suite) fig6() Figure {
	f := Figure{ID: "Fig6", Title: "LLC accesses with lengthened critical path (in-LLC)", Cols: s.appNames(), Unit: "%"}
	f.Series = append(f.Series, s.perApp("data", func(app Profile) float64 {
		m := s.run(app, InLLC(false)).Metrics
		if m.LLCAccesses == 0 {
			return 0
		}
		return 100 * float64(m.LengthenedData) / float64(m.LLCAccesses)
	}))
	f.Series = append(f.Series, s.perApp("code", func(app Profile) float64 {
		m := s.run(app, InLLC(false)).Metrics
		if m.LLCAccesses == 0 {
			return 0
		}
		return 100 * float64(m.LengthenedCode) / float64(m.LLCAccesses)
	}))
	return f
}

// Fig7 reproduces Figure 7: percentage of allocated LLC blocks that
// source lengthened accesses under in-LLC tracking.
func (s *Suite) fig7() Figure {
	f := Figure{ID: "Fig7", Title: "Allocated LLC blocks with lengthened accesses (in-LLC)", Cols: s.appNames(), Unit: "%"}
	f.Series = append(f.Series, s.perApp("blocks", func(app Profile) float64 {
		return 100 * s.run(app, InLLC(false)).Metrics.LengthenedBlockFrac()
	}))
	return f
}

// Fig8 reproduces Figure 8: distribution of allocated LLC blocks with
// non-zero STRA ratio over categories C1..C7.
func (s *Suite) fig8() Figure {
	return s.straDistribution("Fig8", "Block distribution over STRA categories", "stra.blockCat")
}

// Fig9 reproduces Figure 9: distribution of lengthened LLC accesses over
// the accessed block's STRA category.
func (s *Suite) fig9() Figure {
	return s.straDistribution("Fig9", "Lengthened-access distribution over STRA categories", "stra.accessCat")
}

func (s *Suite) straDistribution(id, title, keyPrefix string) Figure {
	f := Figure{ID: id, Title: title, Cols: s.appNames(), Unit: "%", NoAverage: false}
	for cat := 1; cat <= 7; cat++ {
		cat := cat
		f.Series = append(f.Series, s.perApp(fmt.Sprintf("C%d", cat), func(app Profile) float64 {
			m := s.run(app, InLLC(false)).Metrics
			var total, mine uint64
			for c := 1; c <= 7; c++ {
				v := m.Tracker[fmt.Sprintf("%s%d", keyPrefix, c)]
				total += v
				if c == cat {
					mine = v
				}
			}
			if total == 0 {
				return 0
			}
			return 100 * float64(mine) / float64(total)
		}))
	}
	return f
}

// TinySizes are the four tiny-directory sizes of §V.
var TinySizes = []float64{1.0 / 32, 1.0 / 64, 1.0 / 128, 1.0 / 256}

// FigTiny reproduces Figures 10-13: tiny directory at the given size with
// the DSTRA, DSTRA+gNRU, and DSTRA+gNRU+DynSpill policies, normalized to
// the 2x sparse baseline.
func (s *Suite) figTiny(ratio float64) Figure {
	id := map[float64]string{1.0 / 32: "Fig10", 1.0 / 64: "Fig11", 1.0 / 128: "Fig12", 1.0 / 256: "Fig13"}[ratio]
	if id == "" {
		id = "FigTiny-" + ratioName(ratio)
	}
	f := Figure{ID: id, Title: "Tiny directory " + ratioName(ratio), Cols: s.appNames(), Unit: "x vs 2x"}
	for _, pol := range tinyPolicies(ratio) {
		pol := pol
		f.Series = append(f.Series, s.perApp(pol.name, func(app Profile) float64 {
			return s.normCycles(app, pol.scheme)
		}))
	}
	return f
}

type tinyPolicy struct {
	name   string
	scheme Scheme
}

func tinyPolicies(ratio float64) []tinyPolicy {
	return []tinyPolicy{
		{"DSTRA", TinyDirectory(ratio, false, false)},
		{"DSTRA+gNRU", TinyDirectory(ratio, true, false)},
		{"DSTRA+gNRU+DynSpill", TinyDirectory(ratio, true, true)},
	}
}

// FigLengthened reproduces Figures 14/15: percentage of LLC accesses with
// lengthened critical paths under the tiny directory of the given size.
func (s *Suite) figLengthened(ratio float64) Figure {
	id := map[float64]string{1.0 / 32: "Fig14", 1.0 / 256: "Fig15"}[ratio]
	if id == "" {
		id = "FigLen-" + ratioName(ratio)
	}
	f := Figure{ID: id, Title: "Lengthened accesses, tiny " + ratioName(ratio), Cols: s.appNames(), Unit: "%"}
	for _, pol := range tinyPolicies(ratio) {
		pol := pol
		f.Series = append(f.Series, s.perApp(pol.name, func(app Profile) float64 {
			return 100 * s.run(app, pol.scheme).Metrics.LengthenedFrac()
		}))
	}
	return f
}

// Fig16 reproduces Figure 16: tiny-directory hits under DSTRA+gNRU
// normalized to DSTRA, for the four sizes.
func (s *Suite) fig16() Figure {
	return s.gnruRatio("Fig16", "Tiny-directory hits, gNRU vs DSTRA", "tiny.hits")
}

// Fig17 reproduces Figure 17: tiny-directory allocations under
// DSTRA+gNRU normalized to DSTRA.
func (s *Suite) fig17() Figure {
	return s.gnruRatio("Fig17", "Tiny-directory allocations, gNRU vs DSTRA", "tiny.allocs")
}

func (s *Suite) gnruRatio(id, title, key string) Figure {
	f := Figure{ID: id, Title: title, Cols: s.appNames(), Unit: "x"}
	for _, ratio := range TinySizes {
		ratio := ratio
		f.Series = append(f.Series, s.perApp(ratioName(ratio), func(app Profile) float64 {
			a := s.run(app, TinyDirectory(ratio, false, false)).Metrics.Tracker[key]
			b := s.run(app, TinyDirectory(ratio, true, false)).Metrics.Tracker[key]
			if a == 0 {
				if b == 0 {
					return 1
				}
				return float64(b)
			}
			return float64(b) / float64(a)
		}))
	}
	return f
}

// Fig18 reproduces Figure 18: hits per allocation with DSTRA+gNRU.
func (s *Suite) fig18() Figure {
	f := Figure{ID: "Fig18", Title: "Tiny-directory hits per allocation (gNRU)", Cols: s.appNames(), Unit: "hits/alloc"}
	for _, ratio := range TinySizes {
		ratio := ratio
		f.Series = append(f.Series, s.perApp(ratioName(ratio), func(app Profile) float64 {
			m := s.run(app, TinyDirectory(ratio, true, false)).Metrics
			a := m.Tracker["tiny.allocs"]
			if a == 0 {
				return 0
			}
			return float64(m.Tracker["tiny.hits"]) / float64(a)
		}))
	}
	return f
}

// Fig19 reproduces Figure 19: percentage of LLC accesses whose critical
// path is saved by spilled entries (DSTRA+gNRU+DynSpill).
func (s *Suite) fig19() Figure {
	f := Figure{ID: "Fig19", Title: "LLC accesses saved by spilled entries", Cols: s.appNames(), Unit: "%"}
	for _, ratio := range TinySizes {
		ratio := ratio
		f.Series = append(f.Series, s.perApp(ratioName(ratio), func(app Profile) float64 {
			return 100 * s.run(app, TinyDirectory(ratio, true, true)).Metrics.SpillAvoidedFrac()
		}))
	}
	return f
}

// Fig20 reproduces Figure 20: LLC miss-rate increase due to spilling
// (percentage points vs the 2x baseline).
func (s *Suite) fig20() Figure {
	f := Figure{ID: "Fig20", Title: "LLC miss-rate increase from spilling", Cols: s.appNames(), Unit: "pp"}
	for _, ratio := range TinySizes {
		ratio := ratio
		f.Series = append(f.Series, s.perApp(ratioName(ratio), func(app Profile) float64 {
			base := s.baseline(app).Metrics.LLCMissRate()
			m := s.run(app, TinyDirectory(ratio, true, true)).Metrics.LLCMissRate()
			return 100 * (m - base)
		}))
	}
	return f
}

// Fig21 reproduces Figure 21: LLC+directory energy (dynamic, leakage,
// total) and execution cycles for baseline sparse directories from 2x
// down to 1/16x plus the tiny 1/128x, all normalized to the tiny 1/256x
// configuration with DSTRA+gNRU+DynSpill, averaged over the applications.
func (s *Suite) fig21() Figure {
	type point struct {
		name   string
		scheme Scheme
	}
	points := []point{
		{"2x", SparseDirectory(2)},
		{"1x", SparseDirectory(1)},
		{"1/2x", SparseDirectory(0.5)},
		{"1/4x", SparseDirectory(0.25)},
		{"1/8x", SparseDirectory(1.0 / 8)},
		{"1/16x", SparseDirectory(1.0 / 16)},
		{"tiny-1/128x", TinyDirectory(1.0/128, true, true)},
		{"tiny-1/256x", TinyDirectory(1.0/256, true, true)},
	}
	var cols []string
	for _, p := range points {
		cols = append(cols, p.name)
	}
	f := Figure{ID: "Fig21", Title: "Energy and cycles vs tiny 1/256x", Cols: cols, Unit: "x", NoAverage: true}

	type agg struct{ dyn, leak, tot, cycles float64 }
	sums := map[string]*agg{}
	apps := Apps()
	for _, p := range points {
		a := &agg{}
		sums[p.name] = a
		for _, app := range apps {
			r := s.run(app, p.scheme)
			bd := s.energyOf(r, p.scheme)
			a.dyn += bd.DynamicJ
			a.leak += bd.LeakageJ
			a.tot += bd.TotalJ()
			a.cycles += float64(r.Metrics.Cycles)
		}
	}
	ref := sums["tiny-1/256x"]
	mk := func(name string, get func(*agg) float64) Series {
		se := Series{Name: name, Values: map[string]float64{}}
		for _, p := range points {
			se.Values[p.name] = get(sums[p.name]) / get(ref)
		}
		return se
	}
	f.Series = append(f.Series,
		mk("dynamic-energy", func(a *agg) float64 { return a.dyn }),
		mk("leakage-energy", func(a *agg) float64 { return a.leak }),
		mk("total-energy", func(a *agg) float64 { return a.tot }),
		mk("cycles", func(a *agg) float64 { return a.cycles }),
	)
	return f
}

// energyOf evaluates the Fig. 21 energy model for one run.
func (s *Suite) energyOf(r Result, scheme Scheme) energy.Breakdown {
	m := r.Metrics
	cores := r.Cores
	cfg := s.Scale.machine()
	llcBytes := cfg.LLCSets * cfg.LLCWays * 64 * cores
	tagBytes := llcBytes / 16
	dirEntries := 0
	bitsPerEntry := cores + 27 + 32 // sharer vector + state/policy + tag
	switch scheme.Kind {
	case KindSparse, KindSharedOnly, KindSharedOnlySkew, KindMgD, KindStash:
		dirEntries = cfg.DirEntriesPerSlice(scheme.Ratio) * cores
	case KindTiny:
		dirEntries = cfg.DirEntriesPerSlice(scheme.Ratio) * cores
		bitsPerEntry = cores + 27 + 32 // 155-bit entry at 128 cores
	}
	dirBytes := energy.DirectoryBytes(maxInt(dirEntries, 1), bitsPerEntry)
	model := energy.Model{
		LLCData: energy.Structure{Bytes: llcBytes, Ways: cfg.LLCWays},
		LLCTags: energy.Structure{Bytes: tagBytes, Ways: cfg.LLCWays},
		Dir:     energy.Structure{Bytes: dirBytes, Ways: 8},
	}
	act := energy.Activity{
		LLCTagReads:   m.LLCTagReads,
		LLCDataReads:  m.LLCDataReads,
		LLCDataWrites: m.LLCDataWrites + m.LLCStateWrites,
		DirReads:      m.LLCAccesses,
		DirWrites:     m.Tracker["dir.allocs"] + m.Tracker["tiny.allocs"] + m.PrivateMisses/4,
		Cycles:        m.Cycles,
	}
	return model.Energy(act)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig22 reproduces Figure 22: MgD at 1/8x..1/64x and Stash at 1/32x,
// normalized to the 2x sparse baseline.
func (s *Suite) fig22() Figure {
	f := Figure{ID: "Fig22", Title: "MgD and Stash comparison", Cols: s.appNames(), Unit: "x vs 2x"}
	for _, ratio := range []float64{1.0 / 8, 1.0 / 16, 1.0 / 32, 1.0 / 64} {
		ratio := ratio
		f.Series = append(f.Series, s.perApp("MgD-"+ratioName(ratio), func(app Profile) float64 {
			return s.normCycles(app, MgD(ratio))
		}))
	}
	f.Series = append(f.Series, s.perApp("Stash-1/32x", func(app Profile) float64 {
		return s.normCycles(app, Stash(1.0/32))
	}))
	return f
}

// FigHalved reproduces the §V-A robustness experiment: the whole cache
// hierarchy halved, tiny 1/128x policies vs the 2x baseline.
func (s *Suite) figHalved() Figure {
	half := s.derived(Scale{
		Name:           s.Scale.Name + "-halved",
		Cores:          s.Scale.Cores,
		Refs:           s.Scale.Refs,
		HalveHierarchy: true,
	})
	f := Figure{ID: "Halved", Title: "Halved hierarchy, tiny 1/128x", Cols: s.appNames(), Unit: "x vs 2x"}
	f.Series = append(f.Series, half.perApp("DSTRA+gNRU", func(app Profile) float64 {
		return half.normCycles(app, TinyDirectory(1.0/128, true, false))
	}))
	f.Series = append(f.Series, half.perApp("DSTRA+gNRU+DynSpill", func(app Profile) float64 {
		return half.normCycles(app, TinyDirectory(1.0/128, true, true))
	}))
	return f
}

// perFamily fills a series by evaluating fn for every workload-family
// profile (the perApp analogue over FamilyApps).
func (s *Suite) perFamily(name string, fn func(app Profile) float64) Series {
	se := Series{Name: name, Values: map[string]float64{}}
	for _, app := range FamilyApps() {
		se.Values[app.Name] = fn(app)
	}
	return se
}

// FigFamilies compares the tracking schemes on the five specialized
// workload families — the sharing extremes (falsely-shared lines, hot
// home banks, producer-consumer migration, work stealing, multiprogram
// rate mode) that the 17 mixed applications under-stress.
func (s *Suite) FigFamilies() Figure { return s.figure(s.figFamilies) }

func (s *Suite) figFamilies() Figure {
	var cols []string
	for _, p := range FamilyApps() {
		cols = append(cols, p.Name)
	}
	f := Figure{ID: "Families", Title: "Workload families across schemes", Cols: cols, Unit: "x vs 2x"}
	schemes := []Scheme{
		SparseDirectory(1.0 / 8),
		InLLC(false),
		TinyDirectory(1.0/64, true, true),
		Stash(1.0 / 32),
	}
	for _, sc := range schemes {
		sc := sc
		f.Series = append(f.Series, s.perFamily(sc.String(), func(app Profile) float64 {
			return s.normCycles(app, sc)
		}))
	}
	return f
}

// AllFigures runs the complete experiment suite in paper order.
func (s *Suite) AllFigures() []Figure {
	figs := []Figure{
		s.Fig1(), s.Fig2(), s.Fig3(), s.Fig4(), s.Fig5(), s.Fig6(),
		s.Fig7(), s.Fig8(), s.Fig9(),
	}
	for _, r := range TinySizes {
		figs = append(figs, s.FigTiny(r))
	}
	figs = append(figs, s.FigLengthened(1.0/32), s.FigLengthened(1.0/256))
	figs = append(figs, s.Fig16(), s.Fig17(), s.Fig18(), s.Fig19(), s.Fig20(), s.Fig21(), s.Fig22(), s.FigHalved())
	figs = append(figs, s.FigFamilies())
	return figs
}

// FigureByID runs a single figure by identifier ("1".."22", "halved",
// "families", or an ablation name).
func (s *Suite) FigureByID(id string) (Figure, error) {
	switch strings.ToLower(strings.TrimPrefix(strings.ToLower(id), "fig")) {
	case "1":
		return s.Fig1(), nil
	case "2":
		return s.Fig2(), nil
	case "3":
		return s.Fig3(), nil
	case "4":
		return s.Fig4(), nil
	case "5":
		return s.Fig5(), nil
	case "6":
		return s.Fig6(), nil
	case "7":
		return s.Fig7(), nil
	case "8":
		return s.Fig8(), nil
	case "9":
		return s.Fig9(), nil
	case "10":
		return s.FigTiny(1.0 / 32), nil
	case "11":
		return s.FigTiny(1.0 / 64), nil
	case "12":
		return s.FigTiny(1.0 / 128), nil
	case "13":
		return s.FigTiny(1.0 / 256), nil
	case "14":
		return s.FigLengthened(1.0 / 32), nil
	case "15":
		return s.FigLengthened(1.0 / 256), nil
	case "16":
		return s.Fig16(), nil
	case "17":
		return s.Fig17(), nil
	case "18":
		return s.Fig18(), nil
	case "19":
		return s.Fig19(), nil
	case "20":
		return s.Fig20(), nil
	case "21":
		return s.Fig21(), nil
	case "22":
		return s.Fig22(), nil
	case "halved":
		return s.FigHalved(), nil
	case "families":
		return s.FigFamilies(), nil
	case "ablformat", "format":
		return s.AblFormat(), nil
	case "ablgenlen", "genlen":
		return s.AblGenLen(), nil
	case "ablwindow", "window":
		return s.AblWindow(), nil
	}
	return Figure{}, fmt.Errorf("unknown figure %q", id)
}

// SortedTrackerKeys is a small helper for stable metric dumps.
func SortedTrackerKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteCSV emits the figure as CSV: one row per series, one column per
// application (plus Average unless suppressed), for plotting pipelines.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"figure", "series", "unit"}, f.Cols...)
	if !f.NoAverage {
		header = append(header, "Average")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range f.Series {
		row := []string{f.ID, s.Name, f.Unit}
		for _, c := range f.Cols {
			row = append(row, strconv.FormatFloat(s.Values[c], 'f', 6, 64))
		}
		if !f.NoAverage {
			row = append(row, strconv.FormatFloat(s.Avg(f.Cols), 'f', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
