package tinydir

// Progress reporting for sweeps. Before this existed, every prefetch
// worker wrote its own lines straight to Suite.Progress, so `-j > 1`
// interleaved fragments of different runs. All progress now funnels
// through one mutex-guarded Reporter, which also keeps the counters the
// live sweep monitor (`experiments -http`) publishes and derives a run
// ETA from sweep throughput.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"tinydir/internal/obs"
)

// Reporter serializes progress output and tracks sweep state. All methods
// are safe for concurrent use. The zero value is not usable; Suites build
// one lazily around their Progress writer.
type Reporter struct {
	mu      sync.Mutex
	w       io.Writer // nil = counters only, no output
	start   time.Time
	planned int
	done    int
	served  int // done runs answered from the store without simulating
	failed  int // done runs that panicked and were quarantined
	active  map[string]*obs.EpochSampler
}

// NewReporter creates a reporter writing to w (nil suppresses output but
// still tracks counters for the monitor).
func NewReporter(w io.Writer) *Reporter {
	return &Reporter{w: w, start: time.Now(), active: map[string]*obs.EpochSampler{}}
}

func (r *Reporter) printf(format string, args ...interface{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.w != nil {
		fmt.Fprintf(r.w, format, args...)
	}
}

// addPlanned grows the sweep's expected run count (one prefetch plan at a
// time, as figures are built).
func (r *Reporter) addPlanned(n int) {
	r.mu.Lock()
	r.planned += n
	r.mu.Unlock()
}

// runStarted announces a run and registers its sampler (may be nil) for
// live IPC reporting.
func (r *Reporter) runStarted(app, scheme string, e *obs.EpochSampler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e != nil {
		r.active[app+" "+scheme] = e
	}
	if r.w != nil {
		fmt.Fprintf(r.w, "  running %-14s %s\n", app, scheme)
	}
}

// runDone retires a run, printing its duration and the sweep ETA.
func (r *Reporter) runDone(app, scheme string, simulated bool, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.active, app+" "+scheme)
	r.done++
	if !simulated {
		r.served++
	}
	if r.w == nil {
		return
	}
	suffix := fmt.Sprintf("[%d done]", r.done)
	if eta, ok := r.etaLocked(); ok {
		suffix = fmt.Sprintf("[%d/%d eta %s]", r.done, r.planned, eta.Round(time.Second))
	}
	fmt.Fprintf(r.w, "  done    %-14s %-28s %8s %s\n", app, scheme, d.Round(time.Millisecond), suffix)
}

// runFailed retires a quarantined run. The failure still counts toward
// done (the sweep's plan shrinks by it), and the line points at the
// quarantine artifact when one was written.
func (r *Reporter) runFailed(app, scheme, msg, artifact string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.active, app+" "+scheme)
	r.done++
	r.failed++
	if r.w == nil {
		return
	}
	fmt.Fprintf(r.w, "  FAILED  %-14s %-28s %s\n", app, scheme, msg)
	if artifact != "" {
		fmt.Fprintf(r.w, "          quarantined: %s\n", artifact)
	}
}

// etaLocked estimates time to finish the planned runs from sweep
// throughput so far. The rate is based on *executed* simulations only:
// store-served runs complete in ~0 wall time, so counting them (as this
// once did) made a mostly-warm resume report a wildly optimistic ETA for
// the cold tail. With nothing executed yet there is no throughput signal
// and no estimate; a zero-elapsed clock likewise yields none rather than
// a zero rate. Callers hold mu.
func (r *Reporter) etaLocked() (time.Duration, bool) {
	executed := r.done - r.served
	if r.planned < r.done || executed <= 0 {
		return 0, false
	}
	elapsed := time.Since(r.start)
	if elapsed <= 0 {
		return 0, false
	}
	remaining := r.planned - r.done
	per := elapsed / time.Duration(executed)
	return time.Duration(remaining) * per, true
}

// Writer returns an io.Writer whose Writes hold the reporter lock, so
// multi-line dumps (the stall watchdog's) never interleave with progress
// lines or each other.
func (r *Reporter) Writer() io.Writer { return lockedWriter{r} }

type lockedWriter struct{ r *Reporter }

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.r.mu.Lock()
	defer lw.r.mu.Unlock()
	if lw.r.w == nil {
		return len(p), nil
	}
	return lw.r.w.Write(p)
}

// ActiveRun is one in-flight simulation in a SweepStatus.
type ActiveRun struct {
	Name string
	// IPC is the last completed epoch's retirement rate; 0 until the
	// run's first epoch closes (or when epoch sampling is off).
	IPC float64
}

// SweepStatus is the monitor's view of a sweep, published by
// `experiments -http` as the expvar "sweep".
type SweepStatus struct {
	Planned int
	Done    int
	Served  int // answered from the run store without simulating
	Failed  int // panicked and quarantined
	Elapsed time.Duration
	ETA     time.Duration // 0 when unknown
	Active  []ActiveRun
}

// Snapshot returns the current sweep state. Safe to call from any
// goroutine while runs execute.
func (r *Reporter) Snapshot() SweepStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := SweepStatus{
		Planned: r.planned,
		Done:    r.done,
		Served:  r.served,
		Failed:  r.failed,
		Elapsed: time.Since(r.start).Round(time.Millisecond),
	}
	if eta, ok := r.etaLocked(); ok {
		st.ETA = eta.Round(time.Millisecond)
	}
	for name, e := range r.active {
		st.Active = append(st.Active, ActiveRun{Name: name, IPC: e.LatestIPC()})
	}
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i].Name < st.Active[j].Name })
	return st
}

// newRecorder builds a fresh per-run recorder from the suite's Obs
// config, or nil when observability is off. Watchdog dumps default to the
// reporter's locked writer so they cannot interleave with progress lines.
func (s *Suite) newRecorder(rep *Reporter) *ObsRecorder {
	if !s.Obs.Enabled() {
		return nil
	}
	cfg := s.Obs
	if cfg.WatchdogWindow != 0 && cfg.StallOut == nil {
		cfg.StallOut = rep.Writer()
	}
	return NewObsRecorder(cfg)
}

// sampler returns the epoch sampler of a recorder that may be nil.
func sampler(rec *ObsRecorder) *obs.EpochSampler {
	if rec == nil {
		return nil
	}
	return rec.Epochs
}

// obsFileBase derives the artifact file stem for one run. Scheme names
// contain '/' (ratio spellings like "tiny-1/64x-dstra"), which must not
// become path separators.
func obsFileBase(app string, scheme Scheme, sc Scale) string {
	name := app + "_" + scheme.String() + "_" + sc.Name
	if sc.HalveHierarchy {
		name += "_halved"
	}
	return strings.NewReplacer("/", "-", "|", "-").Replace(name)
}

// writeObsArtifacts emits one simulated run's observability files under
// ObsDir: <base>.epochs.csv, <base>.latency.txt, <base>.trace.json —
// whichever pieces the config enabled. The scale comes from the run's own
// Options, not the suite's (derived sub-suites run at other scales).
// Failures are reported, not fatal: a sweep should not die because an
// artifact disk filled.
func (s *Suite) writeObsArtifacts(o Options, rec *ObsRecorder, rep *Reporter) {
	if s.ObsDir == "" || rec == nil {
		return
	}
	base := filepath.Join(s.ObsDir, obsFileBase(o.App.Name, o.Scheme, o.Scale))
	if err := writeObsFiles(base, rec); err != nil {
		rep.printf("  obs: %v\n", err)
	}
}

// executeRun performs one simulation with progress reporting and
// observability attachment — the one code path behind both the serial
// figure builder and the prefetch workers. A run that panics (a protocol
// deadlock, a blown wall-clock deadline, a plain bug) is quarantined: its
// state is dumped to an artifact under ObsDir, the failure is recorded for
// Failures(), and the sweep continues with a zero Result in that slot.
func (s *Suite) executeRun(o Options) (Result, bool) {
	if s.sh.cancelled.Load() {
		// Graceful shutdown: skip the simulation entirely. The figure
		// assembled from this zero result is discarded by the caller
		// (Cancelled() gates output).
		return Result{App: o.App.Name, Scheme: o.Scheme.String()}, false
	}
	rep := s.Monitor()
	if s.Dispatch != nil {
		return s.dispatchRun(o, rep)
	}
	rec := s.newRecorder(rep)
	o.Obs = rec
	if s.RunTimeout > 0 && o.Timeout == 0 {
		o.Timeout = s.RunTimeout
	}
	rep.runStarted(o.App.Name, o.Scheme.String(), sampler(rec))
	start := time.Now()
	r, simulated, failure := s.guardedRun(o)
	if failure != nil {
		f := RunFailure{App: o.App.Name, Scheme: o.Scheme.String(), Err: failure.msg}
		f.Artifact = s.quarantine(o, failure)
		s.sh.mu.Lock()
		s.sh.failures = append(s.sh.failures, f)
		s.sh.mu.Unlock()
		rep.runFailed(o.App.Name, o.Scheme.String(), f.Err, f.Artifact)
		return Result{App: o.App.Name, Scheme: o.Scheme.String()}, false
	}
	if simulated {
		s.writeObsArtifacts(o, rec, rep)
	}
	rep.runDone(o.App.Name, o.Scheme.String(), simulated, time.Since(start))
	return r, simulated
}

// dispatchRun routes one run through the suite's Dispatch (the
// distributed-sweep path) with the same progress reporting and failure
// quarantine bookkeeping as a local run — minus the observability
// recorder, which is per-process state a remote worker cannot share.
func (s *Suite) dispatchRun(o Options, rep *Reporter) (Result, bool) {
	if s.RunTimeout > 0 && o.Timeout == 0 {
		o.Timeout = s.RunTimeout
	}
	rep.runStarted(o.App.Name, o.Scheme.String(), nil)
	start := time.Now()
	r, simulated, err := s.Dispatch(o)
	if err != nil {
		if s.Cancelled() {
			// The dispatch path was torn down under us (coordinator
			// closed); the output is discarded anyway, so this is not a
			// run failure worth recording.
			return Result{App: o.App.Name, Scheme: o.Scheme.String()}, false
		}
		f := RunFailure{App: o.App.Name, Scheme: o.Scheme.String(), Err: err.Error()}
		s.sh.mu.Lock()
		s.sh.failures = append(s.sh.failures, f)
		s.sh.mu.Unlock()
		rep.runFailed(o.App.Name, o.Scheme.String(), f.Err, "")
		return Result{App: o.App.Name, Scheme: o.Scheme.String()}, false
	}
	rep.runDone(o.App.Name, o.Scheme.String(), simulated, time.Since(start))
	return r, simulated
}

// runPanic is a caught run failure: the panic value, the goroutine stack
// at the panic, and the stalled-machine dump when the panic carried one.
type runPanic struct {
	msg   string
	dump  string
	stack []byte
}

// guardedRun isolates one simulation behind a recover so a panicking run
// cannot take down its prefetch worker (and with it the whole sweep).
func (s *Suite) guardedRun(o Options) (r Result, simulated bool, failure *runPanic) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		failure = &runPanic{msg: fmt.Sprint(p), stack: debug.Stack()}
		if te, ok := p.(*RunTimeoutError); ok {
			failure.dump = te.Dump
		}
	}()
	r, simulated = runWithStore(o, s.Store, s.Resume)
	return r, simulated, nil
}

// quarantine writes a failed run's post-mortem — options, error, stalled
// machine dump, stack — to <ObsDir>/quarantine/<base>.txt and returns the
// path ("" when ObsDir is unset or the write fails; the failure itself is
// still recorded either way).
func (s *Suite) quarantine(o Options, p *runPanic) string {
	if s.ObsDir == "" {
		return ""
	}
	dir := filepath.Join(s.ObsDir, "quarantine")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.Monitor().printf("  quarantine: %v\n", err)
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "quarantined run: %s %s scale=%s\n", o.App.Name, o.Scheme, o.Scale.Name)
	fmt.Fprintf(&b, "options: scheme=%+v scale=%+v maxevents=%d fault-rate=%g fault-seed=%d timeout=%s\n",
		o.Scheme, o.Scale, o.MaxEvents, o.FaultRate, o.FaultSeed, o.Timeout)
	fmt.Fprintf(&b, "error: %s\n", p.msg)
	if p.dump != "" {
		fmt.Fprintf(&b, "\nstalled machine state:\n%s", p.dump)
	}
	fmt.Fprintf(&b, "\nstack:\n%s", p.stack)
	path := filepath.Join(dir, obsFileBase(o.App.Name, o.Scheme, o.Scale)+".txt")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		s.Monitor().printf("  quarantine: %v\n", err)
		return ""
	}
	return path
}

// writeObsFiles writes the enabled artifacts for one recorder to
// <base>.<ext>. Shared by the Suite and cmd/experiments single-run paths.
func writeObsFiles(base string, rec *ObsRecorder) error {
	if err := os.MkdirAll(filepath.Dir(base), 0o755); err != nil {
		return err
	}
	emit := func(ext string, write func(io.Writer) error) error {
		f, err := os.Create(base + ext)
		if err != nil {
			return err
		}
		werr := write(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		return cerr
	}
	if rec.Epochs != nil {
		if err := emit(".epochs.csv", rec.Epochs.WriteCSV); err != nil {
			return err
		}
	}
	if rec.Latency != nil {
		if err := emit(".latency.txt", rec.Latency.WriteText); err != nil {
			return err
		}
	}
	if rec.Trace != nil {
		if err := emit(".trace.json", rec.Trace.WriteJSON); err != nil {
			return err
		}
	}
	return nil
}
