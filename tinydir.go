// Package tinydir is the public API of this reproduction of "Tiny
// Directory: Efficient Shared Memory in Many-core Systems with
// Ultra-low-overhead Coherence Tracking" (Shukla & Chaudhuri, HPCA 2017).
//
// It wraps the simulation substrates under internal/ with a configuration
// surface mirroring the paper's experiments: pick an application profile
// (the 17 workloads of Table II), a coherence-tracking scheme (sparse
// baselines, the in-LLC scheme of §III, the tiny directory of §IV, or the
// MgD/Stash comparison points), and a scale, then Run.
//
//	res := tinydir.Run(tinydir.Options{
//	    App:    tinydir.App("barnes"),
//	    Scheme: tinydir.TinyDirectory(1.0/128, true, true),
//	    Scale:  tinydir.ScaleExperiment,
//	})
//	fmt.Println(res.Metrics.Cycles)
package tinydir

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tinydir/internal/core"
	"tinydir/internal/dir"
	"tinydir/internal/obs"
	"tinydir/internal/proto"
	"tinydir/internal/system"
	"tinydir/internal/trace"
	"tinydir/internal/tracefile"
)

// Profile re-exports the synthetic application model.
type Profile = trace.Profile

// Metrics re-exports the simulation metrics.
type Metrics = system.Metrics

// ObsConfig re-exports the observability configuration (see internal/obs):
// epoch sampling interval, latency histograms, trace-span budget, and the
// stall watchdog window.
type ObsConfig = obs.Config

// ObsRecorder re-exports the per-run observability recorder. A recorder
// belongs to exactly one run: it accumulates that run's epoch series,
// latency histograms and trace spans, to be dumped after the run returns.
type ObsRecorder = obs.Recorder

// EpochSample re-exports one closed epoch of the sampler's time series
// (counter deltas over the epoch, plus derivation helpers like IPC).
type EpochSample = obs.EpochSample

// DefaultEpochInterval is the default epoch sampling period in cycles.
const DefaultEpochInterval = obs.DefaultEpochInterval

// NewObsRecorder builds a recorder for one run, or nil when the config
// enables nothing (a nil recorder is the documented "off" state and costs
// one predictable branch per event).
func NewObsRecorder(c ObsConfig) *ObsRecorder { return obs.NewRecorder(c) }

// Apps returns the 17 application profiles of Table II.
func Apps() []Profile { return trace.Apps() }

// FamilyApps returns the five specialized workload-family reference
// profiles (false-sharing, lock-contention, producer-consumer,
// work-stealing, multiprogram); see internal/trace/families.go.
func FamilyApps() []Profile { return trace.FamilyApps() }

// App returns a profile by name — one of the 17 applications or the five
// family profiles — panicking on unknown names (the set is static).
func App(name string) Profile {
	p, ok := trace.AppByName(name)
	if !ok {
		panic(fmt.Sprintf("tinydir: unknown application %q", name))
	}
	return p
}

// TraceInput is a decoded trace file, driving the machine in place of
// the synthetic generator. Obtain one with LoadTraceFile (or build it
// from any [][]trace.Ref). The Digest identifies the trace content in
// store keys; Stats carries the generator-side trace.* measurements
// that replay must surface to stay bit-identical with direct runs.
type TraceInput struct {
	Name   string
	Digest string
	Stats  map[string]uint64
	Traces [][]trace.Ref
}

// Cores returns the number of per-core streams.
func (t *TraceInput) Cores() int { return len(t.Traces) }

// LoadTraceFile reads a trace file written by cmd/tracegen (or any
// producer of the internal/tracefile format).
func LoadTraceFile(path string) (*TraceInput, error) {
	tf, err := tracefile.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if c := len(tf.Traces); c < 2 || c&(c-1) != 0 {
		return nil, fmt.Errorf("tinydir: trace file %s has %d cores; the machine needs a power of two >= 2", path, c)
	}
	return &TraceInput{Name: tf.Name, Digest: tf.Digest, Stats: tf.Stats, Traces: tf.Traces}, nil
}

// SchemeKind enumerates the coherence-tracking organizations.
type SchemeKind int

const (
	// KindSparse is the traditional sparse directory baseline.
	KindSparse SchemeKind = iota
	// KindSharedOnly is the Fig. 3 limit study (shared blocks only).
	KindSharedOnly
	// KindSharedOnlySkew is its 4-way skew-associative variant.
	KindSharedOnlySkew
	// KindInLLC is the §III in-LLC tracking scheme (no directory).
	KindInLLC
	// KindInLLCTagExt is the storage-heavy tag-extended variant.
	KindInLLCTagExt
	// KindTiny is the §IV tiny directory.
	KindTiny
	// KindMgD is the multi-grain directory comparison point.
	KindMgD
	// KindStash is the Stash directory comparison point.
	KindStash
)

// Scheme selects and parameterizes a coherence-tracking organization.
type Scheme struct {
	Kind SchemeKind
	// Ratio is the directory size as a fraction of the 1x size
	// (aggregate private L2 blocks); 2.0 is the paper's reference
	// baseline. Ignored by the in-LLC schemes.
	Ratio float64
	// GNRU and Spill select the tiny-directory policy stack.
	GNRU, Spill bool
	// SpillWindow overrides the spill observation window (0 = the
	// paper's 8K accesses; tests use smaller values).
	SpillWindow uint64
	// FixedGenLen pins the gNRU generation length (in 4K-cycle units)
	// instead of the paper's adaptive estimate — the generation-length
	// ablation knob. 0 = adaptive.
	FixedGenLen uint64
	// EntryFormat narrows the sparse directory's sharer encoding:
	// "" or "fullmap" (the paper's default), "ptrK" (K exact pointers,
	// coarse overflow), or "coarseG" (one bit per G cores). Only
	// meaningful for KindSparse — the §I-A composability ablation.
	EntryFormat string
}

// SparseDirectory returns a traditional sparse directory scheme.
func SparseDirectory(ratio float64) Scheme { return Scheme{Kind: KindSparse, Ratio: ratio} }

// SparseDirectoryWithFormat returns a sparse directory whose sharer
// field uses a narrowed encoding ("ptr4", "coarse8", ...); see
// Scheme.EntryFormat.
func SparseDirectoryWithFormat(ratio float64, format string) Scheme {
	return Scheme{Kind: KindSparse, Ratio: ratio, EntryFormat: format}
}

// SharedOnlyDirectory returns the Fig. 3 limit-study scheme.
func SharedOnlyDirectory(ratio float64, skewed bool) Scheme {
	k := KindSharedOnly
	if skewed {
		k = KindSharedOnlySkew
	}
	return Scheme{Kind: k, Ratio: ratio}
}

// InLLC returns the §III scheme; tagExtended selects the storage-heavy
// variant of Fig. 4.
func InLLC(tagExtended bool) Scheme {
	if tagExtended {
		return Scheme{Kind: KindInLLCTagExt}
	}
	return Scheme{Kind: KindInLLC}
}

// TinyDirectory returns the §IV scheme with the selected policies.
func TinyDirectory(ratio float64, gnru, spill bool) Scheme {
	return Scheme{Kind: KindTiny, Ratio: ratio, GNRU: gnru, Spill: spill}
}

// MgD returns the multi-grain directory comparison scheme.
func MgD(ratio float64) Scheme { return Scheme{Kind: KindMgD, Ratio: ratio} }

// Stash returns the Stash directory comparison scheme.
func Stash(ratio float64) Scheme { return Scheme{Kind: KindStash, Ratio: ratio} }

// String names the scheme like the paper's figure legends.
func (s Scheme) String() string {
	switch s.Kind {
	case KindSparse:
		if s.EntryFormat != "" && s.EntryFormat != "fullmap" {
			return fmt.Sprintf("sparse-%s-%s", ratioName(s.Ratio), s.EntryFormat)
		}
		return fmt.Sprintf("sparse-%s", ratioName(s.Ratio))
	case KindSharedOnly:
		return fmt.Sprintf("sharedonly-%s", ratioName(s.Ratio))
	case KindSharedOnlySkew:
		return fmt.Sprintf("sharedonly-skew-%s", ratioName(s.Ratio))
	case KindInLLC:
		return "inllc"
	case KindInLLCTagExt:
		return "inllc-tagext"
	case KindTiny:
		n := fmt.Sprintf("tiny-%s-dstra", ratioName(s.Ratio))
		if s.GNRU {
			n += "+gnru"
		}
		if s.Spill {
			n += "+dynspill"
		}
		return n
	case KindMgD:
		return fmt.Sprintf("mgd-%s", ratioName(s.Ratio))
	case KindStash:
		return fmt.Sprintf("stash-%s", ratioName(s.Ratio))
	}
	return "unknown"
}

// parseFormat maps an EntryFormat string to the dir-package format.
func parseFormat(s string) dir.Format {
	switch {
	case s == "" || s == "fullmap":
		return nil
	case strings.HasPrefix(s, "ptr"):
		k, err := strconv.Atoi(s[3:])
		if err != nil || k <= 0 {
			panic(fmt.Sprintf("tinydir: bad entry format %q", s))
		}
		return dir.LimitedPtr{K: k}
	case strings.HasPrefix(s, "coarse"):
		g, err := strconv.Atoi(s[6:])
		if err != nil || g <= 0 {
			panic(fmt.Sprintf("tinydir: bad entry format %q", s))
		}
		return dir.Coarse{G: g}
	}
	panic(fmt.Sprintf("tinydir: unknown entry format %q", s))
}

func ratioName(r float64) string {
	if r >= 1 {
		return fmt.Sprintf("%gx", r)
	}
	return fmt.Sprintf("1/%.0fx", 1/r)
}

func (s Scheme) newTracker(cfg system.Config) func(int) proto.Tracker {
	switch s.Kind {
	case KindSparse:
		if f := parseFormat(s.EntryFormat); f != nil {
			return func(int) proto.Tracker {
				return dir.NewSparseWithFormat(cfg.DirEntriesPerSlice(s.Ratio), f)
			}
		}
		return func(int) proto.Tracker { return dir.NewSparse(cfg.DirEntriesPerSlice(s.Ratio)) }
	case KindSharedOnly:
		return func(int) proto.Tracker { return dir.NewSharedOnly(cfg.DirEntriesPerSlice(s.Ratio), false) }
	case KindSharedOnlySkew:
		return func(int) proto.Tracker { return dir.NewSharedOnly(cfg.DirEntriesPerSlice(s.Ratio), true) }
	case KindInLLC:
		return func(int) proto.Tracker { return core.NewInLLC(false) }
	case KindInLLCTagExt:
		return func(int) proto.Tracker { return core.NewInLLC(true) }
	case KindTiny:
		return func(int) proto.Tracker {
			return core.NewTiny(core.TinyConfig{
				Entries:        cfg.DirEntriesPerSlice(s.Ratio),
				GNRU:           s.GNRU,
				Spill:          s.Spill,
				WindowAccesses: s.SpillWindow,
				FixedGenLen:    s.FixedGenLen,
			})
		}
	case KindMgD:
		return func(int) proto.Tracker { return dir.NewMgD(cfg.DirEntriesPerSlice(s.Ratio)) }
	case KindStash:
		return func(int) proto.Tracker { return dir.NewStash(cfg.DirEntriesPerSlice(s.Ratio)) }
	}
	panic("tinydir: unknown scheme kind")
}

// Scale selects the machine size and trace length of a run. The paper's
// machine is ScaleFull; ScaleExperiment shrinks it 4x in every dimension
// (preserving all capacity ratios) so the whole figure suite runs in
// minutes on one CPU; ScaleTest is for unit tests.
type Scale struct {
	Name  string
	Cores int
	Refs  int
	// HalveHierarchy halves the cache hierarchy set counts (the §V-A
	// robustness experiment).
	HalveHierarchy bool
}

var (
	// ScaleTest: 8 cores, small caches.
	ScaleTest = Scale{Name: "test", Cores: 8, Refs: 1500}
	// ScaleExperiment: 32 cores, capacity ratios of Table I.
	ScaleExperiment = Scale{Name: "experiment", Cores: 32, Refs: 4000}
	// ScaleFull: the paper's 128-core machine.
	ScaleFull = Scale{Name: "full", Cores: 128, Refs: 8000}
)

func (sc Scale) machine() system.Config {
	var cfg system.Config
	switch {
	case sc.Cores <= 8:
		cfg = system.TestConfig(sc.Cores)
	case sc.Cores >= 128:
		cfg = system.DefaultConfig(sc.Cores)
	default:
		// Scaled-down Table I machine: private and shared capacities
		// shrink together so every ratio (directory sizes, LLC blocks =
		// 2x aggregate L2 blocks) is preserved.
		cfg = system.DefaultConfig(sc.Cores)
		cfg.L1Sets = 32
		cfg.L2Sets = 64
		cfg.LLCSets = 64
	}
	if sc.HalveHierarchy {
		cfg.L1Sets /= 2
		cfg.L2Sets /= 2
		cfg.LLCSets /= 2
	}
	return cfg
}

// Options configures one simulation.
type Options struct {
	App    Profile
	Scheme Scheme
	Scale  Scale
	// Trace, when non-nil, drives the machine from a decoded trace file
	// instead of generating App's traces: App (except its Name default)
	// and the Scale's core/reference counts are ignored — the machine is
	// sized from the trace itself — and the trace digest enters the store
	// key so identical files dedup and changed content misses.
	Trace *TraceInput
	// MaxEvents bounds the run (0 = default safety bound).
	MaxEvents uint64
	// Obs, when non-nil, attaches the time-resolved observability layer to
	// this run. Recording is pure observation — metrics and event order are
	// bit-identical with or without it — but instrumented runs bypass the
	// store's warmup checkpoints (observability state is deliberately not
	// serialized, and latency histograms must span the whole run). Obs does
	// not contribute to the store key for the same reason.
	Obs *ObsRecorder
	// FaultRate > 0 arms the deterministic fault-injection layer (see
	// internal/fault and DESIGN.md §10) at a uniform rate: mesh delay
	// jitter, message drops and duplicates, ECC-detected tracker
	// corruption and DRAM abort-and-retry, all drawn from a counter-based
	// PRNG keyed by FaultSeed so one (rate, seed) pair replays
	// bit-identically. Rate 0 is the documented off state — the run is
	// bit-identical to one that never mentions faults. Both knobs are part
	// of the store key: faulted runs never mix with clean ones.
	FaultRate float64
	FaultSeed uint64
	// Timeout bounds the run's wall-clock time (0 = none). A run that
	// exceeds it panics with a *RunTimeoutError carrying the stalled
	// machine dump; inside a Suite sweep the panic is caught and the run
	// quarantined (see RunFailure). Wall clock never affects simulated
	// behavior, so Timeout is not part of the store key.
	Timeout time.Duration
}

// Result is the outcome of one simulation.
type Result struct {
	App     string
	Scheme  string
	Cores   int
	Metrics Metrics
}

// Run executes one configuration to completion. Defaulting (scale, spill
// window, event budget) lives in normalizeOptions so Run and the
// store-backed RunWithStore agree on what a configuration means.
func Run(o Options) Result {
	return RunWithStore(o, nil, false)
}

// RunAll executes the given configurations on a bounded worker pool and
// returns the results in input order. Every simulation is fully isolated
// (its own event engine, trace generator and metric sinks), so runs are
// independent and the result for opts[i] is bit-identical whatever the
// worker count. workers <= 0 selects runtime.NumCPU(); workers == 1 runs
// strictly serially on the calling goroutine.
func RunAll(opts []Options, workers int) []Result {
	results := make([]Result, len(opts))
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(opts) {
		workers = len(opts)
	}
	if workers <= 1 {
		for i, o := range opts {
			results[i] = Run(o)
		}
		return results
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(opts) {
					return
				}
				results[i] = Run(opts[i])
			}
		}()
	}
	wg.Wait()
	return results
}
