package tinydir

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"tinydir/internal/runstore"
)

func testStore(t *testing.T) (*RunStore, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := NewRunStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

// resultFile and checkpointFile reproduce the Dir backend's on-disk
// layout, which the tests tamper with directly to simulate crashes.
func resultFile(dir, key string) string     { return filepath.Join(dir, "results", key+".json") }
func checkpointFile(dir, key string) string { return filepath.Join(dir, "checkpoints", key+".snap") }

var storeTestOpts = Options{
	App:    App("barnes"),
	Scheme: TinyDirectory(1.0/64, true, true),
	Scale:  Scale{Name: "store", Cores: 16, Refs: 300},
}

// TestRunStoreColdWarmIdentical: a cold store-backed run, a warm run that
// restores from the checkpoint it left behind, and a plain Run must all
// agree exactly.
func TestRunStoreColdWarmIdentical(t *testing.T) {
	store, dir := testStore(t)
	plain := Run(storeTestOpts)

	cold := RunWithStore(storeTestOpts, store, false)
	if !reflect.DeepEqual(cold, plain) {
		t.Fatalf("cold store-backed run diverged from Run:\ngot  %+v\nwant %+v", cold, plain)
	}
	ck := checkpointFile(dir, store.Key(storeTestOpts))
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("cold run left no warmup checkpoint: %v", err)
	}

	// Drop the result so the warm run must actually simulate, fast-forwarded
	// from the checkpoint. PutResult then byte-compares against nothing, but
	// DeepEqual against the plain run is the real oracle.
	if err := os.Remove(resultFile(dir, store.Key(storeTestOpts))); err != nil {
		t.Fatal(err)
	}
	warm := RunWithStore(storeTestOpts, store, false)
	if !reflect.DeepEqual(warm, plain) {
		t.Fatalf("warm (checkpoint-restored) run diverged from Run:\ngot  %+v\nwant %+v", warm, plain)
	}
}

// TestRunStoreResumeServesStoredResult: with resume set, a stored result is
// returned as-is without re-simulating.
func TestRunStoreResumeServesStoredResult(t *testing.T) {
	store, _ := testStore(t)
	key := store.Key(storeTestOpts)
	doctored := Result{App: "doctored", Scheme: "none", Cores: 1}
	if err := store.PutResult(key, doctored); err != nil {
		t.Fatal(err)
	}
	got := RunWithStore(storeTestOpts, store, true)
	if !reflect.DeepEqual(got, doctored) {
		t.Fatalf("resume did not serve the stored result: got %+v", got)
	}
	// Without resume the run recomputes — and must then fail loudly because
	// the stored bytes differ (collision guard).
	defer func() {
		if recover() == nil {
			t.Error("write-through over a differing stored result did not fail loudly")
		}
	}()
	RunWithStore(storeTestOpts, store, false)
}

// TestRunStoreKeyDistinct: perturbing any single Options field that can
// change a simulation's outcome must change the store key.
func TestRunStoreKeyDistinct(t *testing.T) {
	store, _ := testStore(t)
	base := Options{
		App:    App("barnes"),
		Scheme: Scheme{Kind: KindTiny, Ratio: 1.0 / 64, GNRU: true, Spill: true, SpillWindow: 256, FixedGenLen: 0},
		Scale:  Scale{Name: "keys", Cores: 16, Refs: 300},
	}
	perturbed := map[string]Options{}
	add := func(name string, mutate func(*Options)) {
		o := base
		mutate(&o)
		perturbed[name] = o
	}
	add("app", func(o *Options) { o.App = App("ocean_cp") })
	add("scheme.kind", func(o *Options) { o.Scheme.Kind = KindSparse })
	add("scheme.ratio", func(o *Options) { o.Scheme.Ratio = 1.0 / 128 })
	add("scheme.gnru", func(o *Options) { o.Scheme.GNRU = false })
	add("scheme.spill", func(o *Options) { o.Scheme.Spill = false })
	add("scheme.window", func(o *Options) { o.Scheme.SpillWindow = 128 })
	add("scheme.genlen", func(o *Options) { o.Scheme.FixedGenLen = 4 })
	add("scheme.format", func(o *Options) { o.Scheme.Kind = KindSparse; o.Scheme.EntryFormat = "ptr4" })
	add("scale.cores", func(o *Options) { o.Scale.Cores = 32 })
	add("scale.refs", func(o *Options) { o.Scale.Refs = 301 })
	add("scale.halved", func(o *Options) { o.Scale.HalveHierarchy = true })
	add("maxevents", func(o *Options) { o.MaxEvents = 123456 })
	add("fault.rate", func(o *Options) { o.FaultRate = 0.02 })
	add("fault.seed", func(o *Options) { o.FaultRate = 0.02; o.FaultSeed = 7 })

	baseKey := store.Key(base)
	seen := map[string]string{baseKey: "base"}
	for name, o := range perturbed {
		k := store.Key(o)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbation %q collides with %q (key %s)", name, prev, k[:12])
		}
		seen[k] = name
	}
	// Keys are stable across store instances (content-addressed, no state).
	other, _ := testStore(t)
	if other.Key(base) != baseKey {
		t.Error("key differs between store instances")
	}
}

// TestRunStoreCollisionGuard: PutResult must refuse to replace an existing
// result with different bytes, and must accept an identical rewrite.
func TestRunStoreCollisionGuard(t *testing.T) {
	store, _ := testStore(t)
	key := store.Key(storeTestOpts)
	a := Result{App: "a", Scheme: "s", Cores: 16}
	if err := store.PutResult(key, a); err != nil {
		t.Fatal(err)
	}
	if err := store.PutResult(key, a); err != nil {
		t.Errorf("idempotent rewrite rejected: %v", err)
	}
	b := a
	b.Metrics.Cycles = 1
	err := store.PutResult(key, b)
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Errorf("differing rewrite not refused loudly: %v", err)
	}
	got, ok, gerr := store.GetResult(key)
	if gerr != nil || !ok || !reflect.DeepEqual(got, a) {
		t.Errorf("original result damaged by refused overwrite: %+v ok=%v err=%v", got, ok, gerr)
	}
}

// TestRunStoreTruncatedResultIsMiss: a truncated (or otherwise corrupt)
// results/<key>.json entry is a cache miss with a warning — a resumed
// sweep re-simulates and replaces the debris, never dies on it.
func TestRunStoreTruncatedResultIsMiss(t *testing.T) {
	store, dir := testStore(t)
	key := store.Key(storeTestOpts)
	good := Result{App: "a", Scheme: "s", Cores: 16}
	if err := store.PutResult(key, good); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(resultFile(dir, key))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the entry like a pre-atomic-write crash would have.
	if err := os.WriteFile(resultFile(dir, key), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	defer func(orig func(string, ...interface{})) { storeWarn = orig }(storeWarn)
	storeWarn = func(format string, args ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}

	got, ok, gerr := store.GetResult(key)
	if gerr != nil {
		t.Fatalf("truncated result failed the lookup instead of missing: %v", gerr)
	}
	if ok {
		t.Fatalf("truncated result served as a hit: %+v", got)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "corrupt result") {
		t.Fatalf("no corruption warning on the miss: %q", warnings)
	}

	// The re-run's PutResult replaces the debris (no collision guard — the
	// old bytes are not a valid result).
	if err := store.PutResult(key, good); err != nil {
		t.Fatalf("PutResult over truncated entry failed: %v", err)
	}
	got, ok, gerr = store.GetResult(key)
	if gerr != nil || !ok || !reflect.DeepEqual(got, good) {
		t.Fatalf("store not healed after rewrite: %+v ok=%v err=%v", got, ok, gerr)
	}

	// End-to-end: a resumed store-backed run across a truncated entry
	// simulates and heals rather than failing.
	if err := os.WriteFile(resultFile(dir, key), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	res := RunWithStore(storeTestOpts, store, true)
	if res.Metrics.Cycles == 0 {
		t.Fatalf("resumed run over truncated entry produced no simulation: %+v", res)
	}
}

// TestRunStoreSurvivesCorruptCheckpoint: a truncated or garbage checkpoint
// must silently degrade to a cold run, not fail it.
func TestRunStoreSurvivesCorruptCheckpoint(t *testing.T) {
	store, dir := testStore(t)
	key := store.Key(storeTestOpts)
	if err := os.MkdirAll(filepath.Join(dir, "checkpoints"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointFile(dir, key), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := RunWithStore(storeTestOpts, store, false)
	want := Run(storeTestOpts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run with corrupt checkpoint diverged:\ngot  %+v\nwant %+v", got, want)
	}
	// And the cold run refreshed the checkpoint with a valid one.
	if fi, err := os.Stat(checkpointFile(dir, key)); err != nil || fi.Size() < 100 {
		t.Errorf("checkpoint not refreshed after corruption (err=%v)", err)
	}
}

// TestRunStoreOverHTTPBackend: the full store contract — cold run with
// checkpoint, resume hit, collision guard — holds when the backend is the
// HTTP blob client talking to a remote Dir, exactly as a fleet worker
// mounts the coordinator's store.
func TestRunStoreOverHTTPBackend(t *testing.T) {
	remote, err := runstore.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(runstore.NewServer(remote))
	defer srv.Close()
	store := NewRunStoreWithBackend(runstore.NewLRU(runstore.NewClient(srv.URL), 1<<20))

	plain := Run(storeTestOpts)
	cold := RunWithStore(storeTestOpts, store, false)
	if !reflect.DeepEqual(cold, plain) {
		t.Fatalf("cold HTTP-backed run diverged from Run:\ngot  %+v\nwant %+v", cold, plain)
	}
	key := store.Key(storeTestOpts)
	if _, ok, _ := store.GetResult(key); !ok {
		t.Fatal("cold run's result not visible through the HTTP backend")
	}
	if _, ok, err := remote.Get(runstore.KindCheckpoints, key); err != nil || !ok {
		t.Fatalf("cold run left no checkpoint on the remote store (ok=%v err=%v)", ok, err)
	}

	// A second client (another worker) resumes from the shared store
	// without simulating: the served result is byte-exact.
	other := NewRunStoreWithBackend(runstore.NewClient(srv.URL))
	warm := RunWithStore(storeTestOpts, other, true)
	if !reflect.DeepEqual(warm, plain) {
		t.Fatalf("resume through a second HTTP client diverged:\ngot  %+v\nwant %+v", warm, plain)
	}

	// The collision guard crosses the wire: 409 surfaces as the same loud
	// refusal a local store produces.
	b := plain
	b.Metrics.Cycles++
	if err := other.PutResult(key, b); err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("HTTP-backed differing rewrite not refused loudly: %v", err)
	}
}

// TestRunStoreGC: -store-gc prunes entries older than the age bound,
// keeps younger ones, and in dry-run mode reports without deleting.
func TestRunStoreGC(t *testing.T) {
	store, dir := testStore(t)
	oldKey := strings.Repeat("a", 64)
	newKey := strings.Repeat("b", 64)
	if err := store.PutResult(oldKey, Result{App: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutResult(newKey, Result{App: "new"}); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	if err := os.Chtimes(resultFile(dir, oldKey), stale, stale); err != nil {
		t.Fatal(err)
	}

	stats, err := store.GC(24*time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 2 || stats.Pruned != 1 || stats.Kept != 1 || stats.PrunedBytes <= 0 {
		t.Fatalf("dry-run stats wrong: %+v", stats)
	}
	if _, ok, _ := store.GetResult(oldKey); !ok {
		t.Fatal("dry-run deleted an entry")
	}

	stats, err = store.GC(24*time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned != 1 || stats.Kept != 1 {
		t.Fatalf("gc stats wrong: %+v", stats)
	}
	if _, ok, _ := store.GetResult(oldKey); ok {
		t.Fatal("stale entry survived gc")
	}
	if _, ok, _ := store.GetResult(newKey); !ok {
		t.Fatal("fresh entry pruned by gc")
	}
}

// TestRunStoreGCKinds: the per-kind breakdown behind `experiments
// -store-gc` — primaries prune with their digest sidecars (the
// integrity layer deletes them together), while orphaned sidecars and
// quarantine copies age out by their own modification times.
func TestRunStoreGCKinds(t *testing.T) {
	store, dir := testStore(t)
	oldKey := strings.Repeat("c", 64)
	newKey := strings.Repeat("d", 64)
	orphanKey := strings.Repeat("e", 64)
	if err := store.PutResult(oldKey, Result{App: "old"}); err != nil {
		t.Fatal(err)
	}
	if err := store.PutResult(newKey, Result{App: "new"}); err != nil {
		t.Fatal(err)
	}
	// An orphaned digest sidecar (its primary long gone) and an aged
	// quarantine copy, both stale; plus the stale primary.
	digestKind := runstore.DigestKind(runstore.KindResults)
	quarKind := runstore.QuarantineKind(runstore.KindResults)
	if err := store.Backend().Put(digestKind, orphanKey, []byte("deadbeef"), true); err != nil {
		t.Fatal(err)
	}
	if err := store.Backend().Put(quarKind, orphanKey, []byte("{corrupt}"), true); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-48 * time.Hour)
	for _, f := range []string{
		resultFile(dir, oldKey),
		filepath.Join(dir, digestKind, orphanKey+".dat"),
		filepath.Join(dir, quarKind, orphanKey+".dat"),
	} {
		if err := os.Chtimes(f, stale, stale); err != nil {
			t.Fatal(err)
		}
	}

	// Dry run first: the per-kind report (counts and would-reclaim
	// bytes) must be complete without anything being deleted.
	dry, err := store.GC(24*time.Hour, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{runstore.KindResults, digestKind, quarKind} {
		ks := dry.Kinds[kind]
		if ks.Pruned == 0 || ks.PrunedBytes <= 0 {
			t.Fatalf("dry-run kind %s reports nothing to reclaim: %+v", kind, ks)
		}
	}
	if _, ok, _ := store.GetResult(oldKey); !ok {
		t.Fatal("dry run deleted an entry")
	}

	stats, err := store.GC(24*time.Hour, false)
	if err != nil {
		t.Fatal(err)
	}
	// Top-level stats count primaries only (the CLI's headline numbers).
	if stats.Scanned != 2 || stats.Pruned != 1 || stats.Kept != 1 {
		t.Fatalf("top-level stats: %+v", stats)
	}
	// results: old pruned, new kept. results-sha256: old's sidecar went
	// with its primary (integrity delete), so only new's fresh sidecar
	// and the stale orphan are walked; the orphan prunes. quarantine:
	// the one stale copy prunes.
	if ks := stats.Kinds[runstore.KindResults]; ks.Scanned != 2 || ks.Pruned != 1 || ks.Kept != 1 {
		t.Fatalf("results kind stats: %+v", ks)
	}
	if ks := stats.Kinds[digestKind]; ks.Scanned != 2 || ks.Pruned != 1 || ks.Kept != 1 {
		t.Fatalf("digest kind stats: %+v (want orphan pruned, live sidecar kept)", ks)
	}
	if ks := stats.Kinds[quarKind]; ks.Scanned != 1 || ks.Pruned != 1 {
		t.Fatalf("quarantine kind stats: %+v", ks)
	}
	// The survivor still round-trips through the verified read path.
	if _, ok, err := store.GetResult(newKey); err != nil || !ok {
		t.Fatalf("fresh entry after gc: ok=%v err=%v", ok, err)
	}
}
