package tinydir

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testStore(t *testing.T) *RunStore {
	t.Helper()
	s, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var storeTestOpts = Options{
	App:    App("barnes"),
	Scheme: TinyDirectory(1.0/64, true, true),
	Scale:  Scale{Name: "store", Cores: 16, Refs: 300},
}

// TestRunStoreColdWarmIdentical: a cold store-backed run, a warm run that
// restores from the checkpoint it left behind, and a plain Run must all
// agree exactly.
func TestRunStoreColdWarmIdentical(t *testing.T) {
	store := testStore(t)
	plain := Run(storeTestOpts)

	cold := RunWithStore(storeTestOpts, store, false)
	if !reflect.DeepEqual(cold, plain) {
		t.Fatalf("cold store-backed run diverged from Run:\ngot  %+v\nwant %+v", cold, plain)
	}
	ck := store.checkpointPath(store.Key(storeTestOpts))
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("cold run left no warmup checkpoint: %v", err)
	}

	// Drop the result so the warm run must actually simulate, fast-forwarded
	// from the checkpoint. PutResult then byte-compares against nothing, but
	// DeepEqual against the plain run is the real oracle.
	if err := os.Remove(store.resultPath(store.Key(storeTestOpts))); err != nil {
		t.Fatal(err)
	}
	warm := RunWithStore(storeTestOpts, store, false)
	if !reflect.DeepEqual(warm, plain) {
		t.Fatalf("warm (checkpoint-restored) run diverged from Run:\ngot  %+v\nwant %+v", warm, plain)
	}
}

// TestRunStoreResumeServesStoredResult: with resume set, a stored result is
// returned as-is without re-simulating.
func TestRunStoreResumeServesStoredResult(t *testing.T) {
	store := testStore(t)
	key := store.Key(storeTestOpts)
	doctored := Result{App: "doctored", Scheme: "none", Cores: 1}
	if err := store.PutResult(key, doctored); err != nil {
		t.Fatal(err)
	}
	got := RunWithStore(storeTestOpts, store, true)
	if !reflect.DeepEqual(got, doctored) {
		t.Fatalf("resume did not serve the stored result: got %+v", got)
	}
	// Without resume the run recomputes — and must then fail loudly because
	// the stored bytes differ (collision guard).
	defer func() {
		if recover() == nil {
			t.Error("write-through over a differing stored result did not fail loudly")
		}
	}()
	RunWithStore(storeTestOpts, store, false)
}

// TestRunStoreKeyDistinct: perturbing any single Options field that can
// change a simulation's outcome must change the store key.
func TestRunStoreKeyDistinct(t *testing.T) {
	store := testStore(t)
	base := Options{
		App:    App("barnes"),
		Scheme: Scheme{Kind: KindTiny, Ratio: 1.0 / 64, GNRU: true, Spill: true, SpillWindow: 256, FixedGenLen: 0},
		Scale:  Scale{Name: "keys", Cores: 16, Refs: 300},
	}
	perturbed := map[string]Options{}
	add := func(name string, mutate func(*Options)) {
		o := base
		mutate(&o)
		perturbed[name] = o
	}
	add("app", func(o *Options) { o.App = App("ocean_cp") })
	add("scheme.kind", func(o *Options) { o.Scheme.Kind = KindSparse })
	add("scheme.ratio", func(o *Options) { o.Scheme.Ratio = 1.0 / 128 })
	add("scheme.gnru", func(o *Options) { o.Scheme.GNRU = false })
	add("scheme.spill", func(o *Options) { o.Scheme.Spill = false })
	add("scheme.window", func(o *Options) { o.Scheme.SpillWindow = 128 })
	add("scheme.genlen", func(o *Options) { o.Scheme.FixedGenLen = 4 })
	add("scheme.format", func(o *Options) { o.Scheme.Kind = KindSparse; o.Scheme.EntryFormat = "ptr4" })
	add("scale.cores", func(o *Options) { o.Scale.Cores = 32 })
	add("scale.refs", func(o *Options) { o.Scale.Refs = 301 })
	add("scale.halved", func(o *Options) { o.Scale.HalveHierarchy = true })
	add("maxevents", func(o *Options) { o.MaxEvents = 123456 })
	add("fault.rate", func(o *Options) { o.FaultRate = 0.02 })
	add("fault.seed", func(o *Options) { o.FaultRate = 0.02; o.FaultSeed = 7 })

	baseKey := store.Key(base)
	seen := map[string]string{baseKey: "base"}
	for name, o := range perturbed {
		k := store.Key(o)
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbation %q collides with %q (key %s)", name, prev, k[:12])
		}
		seen[k] = name
	}
	// Keys are stable across store instances (content-addressed, no state).
	other := testStore(t)
	if other.Key(base) != baseKey {
		t.Error("key differs between store instances")
	}
}

// TestRunStoreCollisionGuard: PutResult must refuse to replace an existing
// result with different bytes, and must accept an identical rewrite.
func TestRunStoreCollisionGuard(t *testing.T) {
	store := testStore(t)
	key := store.Key(storeTestOpts)
	a := Result{App: "a", Scheme: "s", Cores: 16}
	if err := store.PutResult(key, a); err != nil {
		t.Fatal(err)
	}
	if err := store.PutResult(key, a); err != nil {
		t.Errorf("idempotent rewrite rejected: %v", err)
	}
	b := a
	b.Metrics.Cycles = 1
	err := store.PutResult(key, b)
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Errorf("differing rewrite not refused loudly: %v", err)
	}
	got, ok, gerr := store.GetResult(key)
	if gerr != nil || !ok || !reflect.DeepEqual(got, a) {
		t.Errorf("original result damaged by refused overwrite: %+v ok=%v err=%v", got, ok, gerr)
	}
}

// TestRunStoreTruncatedResultIsMiss: a truncated (or otherwise corrupt)
// results/<key>.json entry is a cache miss with a warning — a resumed
// sweep re-simulates and replaces the debris, never dies on it.
func TestRunStoreTruncatedResultIsMiss(t *testing.T) {
	store := testStore(t)
	key := store.Key(storeTestOpts)
	good := Result{App: "a", Scheme: "s", Cores: 16}
	if err := store.PutResult(key, good); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(store.resultPath(key))
	if err != nil {
		t.Fatal(err)
	}
	// Tear the entry like a pre-atomic-write crash would have.
	if err := os.WriteFile(store.resultPath(key), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var warnings []string
	defer func(orig func(string, ...interface{})) { storeWarn = orig }(storeWarn)
	storeWarn = func(format string, args ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}

	got, ok, gerr := store.GetResult(key)
	if gerr != nil {
		t.Fatalf("truncated result failed the lookup instead of missing: %v", gerr)
	}
	if ok {
		t.Fatalf("truncated result served as a hit: %+v", got)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "corrupt result") {
		t.Fatalf("no corruption warning on the miss: %q", warnings)
	}

	// The re-run's PutResult replaces the debris (no collision guard — the
	// old bytes are not a valid result).
	if err := store.PutResult(key, good); err != nil {
		t.Fatalf("PutResult over truncated entry failed: %v", err)
	}
	got, ok, gerr = store.GetResult(key)
	if gerr != nil || !ok || !reflect.DeepEqual(got, good) {
		t.Fatalf("store not healed after rewrite: %+v ok=%v err=%v", got, ok, gerr)
	}

	// End-to-end: a resumed store-backed run across a truncated entry
	// simulates and heals rather than failing.
	if err := os.WriteFile(store.resultPath(key), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	res := RunWithStore(storeTestOpts, store, true)
	if res.Metrics.Cycles == 0 {
		t.Fatalf("resumed run over truncated entry produced no simulation: %+v", res)
	}
}

// TestRunStoreSurvivesCorruptCheckpoint: a truncated or garbage checkpoint
// must silently degrade to a cold run, not fail it.
func TestRunStoreSurvivesCorruptCheckpoint(t *testing.T) {
	store := testStore(t)
	key := store.Key(storeTestOpts)
	if err := os.WriteFile(store.checkpointPath(key), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	got := RunWithStore(storeTestOpts, store, false)
	want := Run(storeTestOpts)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("run with corrupt checkpoint diverged:\ngot  %+v\nwant %+v", got, want)
	}
	// And the cold run refreshed the checkpoint with a valid one.
	if fi, err := os.Stat(filepath.Join(store.root, "checkpoints", key+".snap")); err != nil || fi.Size() < 100 {
		t.Errorf("checkpoint not refreshed after corruption (err=%v)", err)
	}
}
