package tinydir

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden figure fixture")

// goldenScale is a reduced machine whose runs take milliseconds; the
// fixture pins exact figure rows, so any unintended change to the
// protocol, the trace generator or the figure math shows up as a diff.
var goldenScale = Scale{Name: "golden", Cores: 8, Refs: 800}

// TestGoldenFigureRows regenerates a handful of figure rows at reduced
// scale and compares them byte-for-byte against the checked-in fixture.
// The simulator is deterministic, so this either matches exactly or
// something real changed. Refresh intentionally with:
//
//	go test -run TestGoldenFigureRows -update .
func TestGoldenFigureRows(t *testing.T) {
	s := NewSuite(goldenScale)
	var buf bytes.Buffer
	// FigFamilies rides at the end so the classic rows above keep their
	// exact bytes across fixture refreshes that only add families.
	for _, f := range []Figure{s.Fig4(), s.Fig6(), s.FigTiny(1.0 / 64), s.FigFamilies()} {
		if err := f.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "figures_golden.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("figure rows drifted from %s — if intentional, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
