package tinydir

// HTTP-surface tests for the dashboard (TestDashboard in
// distributed_test.go covers the happy path): status JSON shape with
// and without a fleet, the store-health panel, traversal hardening on
// the obs file route (including encoded separators, which only a raw
// request can exercise — net/http cleans paths before ServeMux routing),
// and the root handler 404ing everything but /.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"tinydir/internal/runstore"
	"tinydir/internal/telemetry"
)

// TestDashboardStatusShape pins the /dash/status JSON keys: Fleet and
// the store panel appear exactly when wired, never otherwise.
func TestDashboardStatusShape(t *testing.T) {
	fetch := func(d *Dashboard) map[string]json.RawMessage {
		mux := http.NewServeMux()
		d.Register(mux)
		srv := httptest.NewServer(mux)
		defer srv.Close()
		resp, err := http.Get(srv.URL + "/dash/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Local sweep: no fleet, no store panel.
	local := fetch(&Dashboard{Reporter: NewReporter(nil)})
	if _, ok := local["Sweep"]; !ok {
		t.Fatal("status missing Sweep")
	}
	for _, key := range []string{"Fleet", "Store", "Caches"} {
		if _, ok := local[key]; ok {
			t.Errorf("local status unexpectedly carries %s", key)
		}
	}

	// Distributed sweep with telemetry: fleet and store rows present.
	reg := telemetry.NewRegistry()
	mem := &memStoreBackend{m: map[string][]byte{}}
	b := runstore.NewMetrics(reg).Instrument(runstore.NewLRU(mem, 1<<20), "lru")
	b.Put("results", "k", []byte("v"), false)
	b.Get("results", "k")
	dist := fetch(&Dashboard{
		Reporter: NewReporter(nil),
		Fleet:    func() interface{} { return map[string]int{"Pending": 2} },
		Registry: reg,
	})
	if _, ok := dist["Fleet"]; !ok {
		t.Fatal("distributed status missing Fleet")
	}
	var ops []storeOpHealth
	if err := json.Unmarshal(dist["Store"], &ops); err != nil || len(ops) == 0 {
		t.Fatalf("store panel rows: %v (%s)", err, dist["Store"])
	}
	var caches []storeCacheHealth
	if err := json.Unmarshal(dist["Caches"], &caches); err != nil || len(caches) != 1 {
		t.Fatalf("cache panel rows: %v (%s)", err, dist["Caches"])
	}
	if caches[0].Backend != "lru" || caches[0].HitRate != 1 {
		t.Fatalf("cache row: %+v", caches[0])
	}
}

// memStoreBackend is a minimal in-memory backend for dashboard tests.
type memStoreBackend struct{ m map[string][]byte }

func (b *memStoreBackend) Get(kind, key string) ([]byte, bool, error) {
	v, ok := b.m[kind+"/"+key]
	return v, ok, nil
}
func (b *memStoreBackend) Put(kind, key string, data []byte, replace bool) error {
	b.m[kind+"/"+key] = data
	return nil
}
func (b *memStoreBackend) Stat(kind, key string) (runstore.Info, bool, error) {
	v, ok := b.m[kind+"/"+key]
	return runstore.Info{Key: key, Size: int64(len(v))}, ok, nil
}
func (b *memStoreBackend) Keys(kind string) ([]runstore.Info, error) { return nil, nil }
func (b *memStoreBackend) Delete(kind, key string) error             { delete(b.m, kind+"/"+key); return nil }

// TestDashboardObsTraversalRaw sends uncleaned request targets straight
// over the socket — the only way to exercise encoded dots and slashes,
// since http.Get and ServeMux canonicalize first — and plants a bait
// .epochs.csv one directory above ObsDir that must stay unreachable.
func TestDashboardObsTraversalRaw(t *testing.T) {
	parent := t.TempDir()
	obsDir := filepath.Join(parent, "obs")
	if err := os.Mkdir(obsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(parent, "bait.epochs.csv"), []byte("stolen"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(obsDir, "ok.epochs.csv"), []byte("fine"), 0o644); err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	(&Dashboard{ObsDir: obsDir}).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	rawGet := func(target string) (status int, body string) {
		conn, err := net.Dial("tcp", srv.Listener.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n", target)
		resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
		if err != nil {
			t.Fatalf("raw GET %s: %v", target, err)
		}
		defer resp.Body.Close()
		var buf [64]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, string(buf[:n])
	}

	if status, body := rawGet("/dash/obs/ok.epochs.csv"); status != 200 || body != "fine" {
		t.Fatalf("listed CSV over raw socket: %d %q", status, body)
	}
	for _, target := range []string{
		"/dash/obs/../bait.epochs.csv",              // plain dot-dot, uncleaned
		"/dash/obs/%2e%2e/bait.epochs.csv",          // encoded dots
		"/dash/obs/..%2fbait.epochs.csv",            // encoded slash
		"/dash/obs/x%2f..%2f..%2fbait.epochs.csv",   // nested encoded traversal
		"/dash/obs//" + parent + "/bait.epochs.csv", // absolute-ish path
	} {
		status, body := rawGet(target)
		if status == 200 && body == "stolen" {
			t.Errorf("raw GET %s served the bait file outside ObsDir", target)
		}
	}
}

// TestDashboardRootOnlyServesRoot: the catch-all pattern must 404
// every path it does not explicitly own, not serve the page everywhere.
func TestDashboardRootOnlyServesRoot(t *testing.T) {
	mux := http.NewServeMux()
	(&Dashboard{}).Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("root page: %d", resp.StatusCode)
	}
	for _, path := range []string{"/nope", "/dash", "/dash/", "/index.html"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}
