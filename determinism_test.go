package tinydir

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// The parallel harness guarantee (cmd/experiments -j): every simulation
// is fully isolated — its own event engine, trace generator and metric
// sinks — so results are a pure function of Options and figure output is
// bit-identical at any worker count. These tests pin that guarantee.

// detScale keeps the determinism runs cheap: identity, not statistics,
// is under test.
var detScale = Scale{Name: "det", Cores: 8, Refs: 600}

// TestRunDeterminism: the same Options must produce identical Results,
// down to every metric and tracker counter.
func TestRunDeterminism(t *testing.T) {
	o := Options{App: App("barnes"), Scheme: TinyDirectory(1.0/64, true, true), Scale: detScale}
	a, b := Run(o), Run(o)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of the same Options diverged:\n%+v\n%+v", a, b)
	}
}

// TestRunAllMatchesSerial: RunAll on a multi-worker pool must return
// exactly what a serial loop returns, in input order.
func TestRunAllMatchesSerial(t *testing.T) {
	var opts []Options
	for _, app := range []string{"barnes", "TPC-C", "bodytrack"} {
		for _, sch := range []Scheme{SparseDirectory(2), InLLC(false), TinyDirectory(1.0/64, true, true)} {
			opts = append(opts, Options{App: App(app), Scheme: sch, Scale: detScale})
		}
	}
	serial := RunAll(opts, 1)
	parallel := RunAll(opts, 4)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("opts[%d] (%s/%s): serial and parallel results diverged",
				i, serial[i].App, serial[i].Scheme)
		}
	}
}

// TestSuiteParallelBitIdentical: a Suite rendering figures through the
// parallel prefetch path must emit byte-for-byte the output of a serial
// suite — the property behind cmd/experiments' -j flag.
func TestSuiteParallelBitIdentical(t *testing.T) {
	render := func(workers int) []byte {
		s := NewSuite(detScale)
		s.Workers = workers
		var buf bytes.Buffer
		for _, f := range []Figure{s.Fig6(), s.FigTiny(1.0 / 64)} {
			f.Fprint(&buf)
			if err := f.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("figure output differs between -j 1 and -j 4:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestTrackerDumpDeterministic: the tracker-counter dump consumed by
// cmd/tinysim (and any metric sink walking Metrics.Tracker) must render
// identically across runs — Metrics.Tracker is a Go map, so any consumer
// iterating it raw would be at the mercy of map iteration order. The
// SortedTrackerKeys helper is the pinned contract: sorted, complete, and
// stable from run to run.
func TestTrackerDumpDeterministic(t *testing.T) {
	o := Options{App: App("barnes"), Scheme: TinyDirectory(1.0/64, true, true), Scale: detScale}
	render := func() string {
		m := Run(o).Metrics
		var buf bytes.Buffer
		for _, k := range SortedTrackerKeys(m.Tracker) {
			fmt.Fprintf(&buf, "%s=%d\n", k, m.Tracker[k])
		}
		return buf.String()
	}
	a, b := render(), render()
	if a == "" {
		t.Fatal("tracker dump is empty: no counters rendered")
	}
	if a != b {
		t.Fatalf("tracker dump diverged between identical runs:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	keys := SortedTrackerKeys(Run(o).Metrics.Tracker)
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("SortedTrackerKeys returned unsorted keys: %v", keys)
	}
}
